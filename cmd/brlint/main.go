// Command brlint runs the simulator's static-analysis suite (package
// repro/internal/analysis) over the whole module and reports findings as
//
//	file:line: rule: message
//
// exiting non-zero when any finding survives the //brlint:allow
// directives. It is part of the pre-PR `make check` gate; see DESIGN.md
// "Determinism & static analysis" for the rules and the rationale.
//
// Usage:
//
//	go run ./cmd/brlint ./...
//
// The package pattern argument is accepted for familiarity but the whole
// module is always loaded: config-validate and result-agg are cross-package
// contracts that only make sense module-wide.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	all := analysis.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	selected := all
	if *rules != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		var known []string
		for _, a := range all {
			byName[a.Name] = a
			known = append(known, a.Name)
		}
		selected = nil
		for _, name := range strings.Split(*rules, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "brlint: unknown rule %q (known: %s)\n",
					name, strings.Join(known, ", "))
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "brlint:", err)
		os.Exit(2)
	}
	prog, err := analysis.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "brlint:", err)
		os.Exit(2)
	}
	diags := prog.Run(selected)
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "brlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
