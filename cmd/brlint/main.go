// Command brlint runs the simulator's static-analysis suite (package
// repro/internal/analysis) over the whole module and reports findings as
//
//	file:line: rule: message
//
// or, with -json, as a machine-readable report. It is part of the pre-PR
// `make check` gate and the CI lint job; see DESIGN.md "Determinism & static
// analysis" for the rules and the rationale.
//
// Usage:
//
//	go run ./cmd/brlint [flags] [./...]
//
// The package pattern argument is accepted for familiarity but the whole
// module is always loaded: the rules are cross-package contracts (call-graph
// reachability, config-validate, result-agg) that only make sense
// module-wide.
//
// Exit codes are a contract CI relies on:
//
//	0 — clean (every finding fixed, suppressed or baselined)
//	1 — at least one non-baselined finding
//	2 — usage error or the module failed to load/type-check
//
// A committed baseline (-baseline brlint.baseline) lets a new rule land
// before all of its pre-existing findings are fixed; -write-baseline
// regenerates the file from the current findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

const (
	exitClean     = 0
	exitFindings  = 1
	exitUsageLoad = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonReport is the -json output schema, pinned by TestJSONGolden.
type jsonReport struct {
	// Rules is every rule that ran, sorted.
	Rules []string `json:"rules"`
	// Findings are the non-baselined findings, sorted by file, line, rule.
	Findings []jsonFinding `json:"findings"`
	// Baselined counts findings absorbed by the -baseline file.
	Baselined int `json:"baselined"`
}

type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("brlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit a machine-readable JSON report on stdout")
	baselinePath := fs.String("baseline", "", "baseline file of accepted findings; new findings still fail")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite the -baseline file from the current findings and exit 0")
	dirFlag := fs.String("dir", "", "module root to analyze (default: nearest go.mod above the working directory)")
	if err := fs.Parse(args); err != nil {
		return exitUsageLoad
	}

	all := analysis.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}
	selected := all
	if *rules != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		var known []string
		for _, a := range all {
			byName[a.Name] = a
			known = append(known, a.Name)
		}
		selected = nil
		for _, name := range strings.Split(*rules, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "brlint: unknown rule %q (known: %s)\n",
					name, strings.Join(known, ", "))
				return exitUsageLoad
			}
			selected = append(selected, a)
		}
	}

	root := *dirFlag
	if root == "" {
		var err error
		root, err = moduleRoot()
		if err != nil {
			fmt.Fprintln(stderr, "brlint:", err)
			return exitUsageLoad
		}
	}
	prog, err := analysis.Load(root)
	if err != nil {
		fmt.Fprintln(stderr, "brlint:", err)
		return exitUsageLoad
	}
	diags := prog.Run(selected)

	// Report module-root-relative paths: stable across checkouts, and what
	// the committed baseline stores.
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}

	if *writeBaseline {
		if *baselinePath == "" {
			fmt.Fprintln(stderr, "brlint: -write-baseline requires -baseline <file>")
			return exitUsageLoad
		}
		if err := os.WriteFile(*baselinePath, analysis.FormatBaseline(diags), 0o644); err != nil {
			fmt.Fprintln(stderr, "brlint:", err)
			return exitUsageLoad
		}
		fmt.Fprintf(stderr, "brlint: wrote %d finding(s) to %s\n", len(diags), *baselinePath)
		return exitClean
	}

	baselined := 0
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "brlint:", err)
			return exitUsageLoad
		}
		bl, err := analysis.ParseBaseline(data)
		if err != nil {
			fmt.Fprintf(stderr, "brlint: %s: %v\n", *baselinePath, err)
			return exitUsageLoad
		}
		diags, baselined = bl.Filter(diags)
	}

	if *jsonOut {
		report := jsonReport{Findings: []jsonFinding{}, Baselined: baselined}
		for _, a := range selected {
			report.Rules = append(report.Rules, a.Name)
		}
		for _, d := range diags {
			report.Findings = append(report.Findings, jsonFinding{
				File: d.Pos.Filename, Line: d.Pos.Line, Rule: d.Rule, Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "brlint:", err)
			return exitUsageLoad
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "brlint: %d finding(s)", len(diags))
		if baselined > 0 {
			fmt.Fprintf(stderr, " (+%d baselined)", baselined)
		}
		fmt.Fprintln(stderr)
		return exitFindings
	}
	if baselined > 0 {
		fmt.Fprintf(stderr, "brlint: clean (%d baselined)\n", baselined)
	}
	return exitClean
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
