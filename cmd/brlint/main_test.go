package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// runBrlint invokes the driver in-process against a testdata module.
func runBrlint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errB bytes.Buffer
	code = run(args, &out, &errB)
	return code, out.String(), errB.String()
}

func fixture(t *testing.T, name string) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestExitCleanModule(t *testing.T) {
	code, stdout, stderr := runBrlint(t, "-dir", fixture(t, "clean"))
	if code != exitClean {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, exitClean, stderr)
	}
	if stdout != "" {
		t.Fatalf("clean module should print nothing, got %q", stdout)
	}
}

func TestExitFindings(t *testing.T) {
	code, stdout, stderr := runBrlint(t, "-dir", fixture(t, "dirty"))
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, exitFindings, stderr)
	}
	if !strings.Contains(stdout, "determinism") || !strings.Contains(stdout, "time.Now") {
		t.Fatalf("findings should be printed on stdout, got %q", stdout)
	}
	if !strings.Contains(stderr, "2 finding(s)") {
		t.Fatalf("stderr should summarize the count, got %q", stderr)
	}
	// Paths are module-root-relative with forward slashes.
	if !strings.Contains(stdout, "internal/core/core.go:") {
		t.Fatalf("findings should use module-relative paths, got %q", stdout)
	}
}

func TestExitLoadError(t *testing.T) {
	code, _, stderr := runBrlint(t, "-dir", fixture(t, "broken"))
	if code != exitUsageLoad {
		t.Fatalf("exit = %d, want %d", code, exitUsageLoad)
	}
	if !strings.Contains(stderr, "brlint:") {
		t.Fatalf("load error should be reported on stderr, got %q", stderr)
	}
}

func TestExitUsageErrors(t *testing.T) {
	if code, _, _ := runBrlint(t, "-no-such-flag"); code != exitUsageLoad {
		t.Fatalf("unknown flag: exit = %d, want %d", code, exitUsageLoad)
	}
	if code, _, stderr := runBrlint(t, "-rules", "no-such-rule", "-dir", fixture(t, "clean")); code != exitUsageLoad || !strings.Contains(stderr, "unknown rule") {
		t.Fatalf("unknown rule: exit = %d, stderr = %q", code, stderr)
	}
	if code, _, _ := runBrlint(t, "-write-baseline", "-dir", fixture(t, "dirty")); code != exitUsageLoad {
		t.Fatalf("-write-baseline without -baseline: exit = %d, want %d", code, exitUsageLoad)
	}
}

func TestListExitsClean(t *testing.T) {
	code, stdout, _ := runBrlint(t, "-list")
	if code != exitClean || !strings.Contains(stdout, "determinism") || !strings.Contains(stdout, "hot-path-alloc") {
		t.Fatalf("-list: exit = %d, stdout = %q", code, stdout)
	}
}

func TestRulesSubset(t *testing.T) {
	// Only trace-guard selected: the dirty module's determinism findings
	// must not appear.
	code, stdout, _ := runBrlint(t, "-rules", "trace-guard", "-dir", fixture(t, "dirty"))
	if code != exitClean || stdout != "" {
		t.Fatalf("subset run should be clean: exit = %d, stdout = %q", code, stdout)
	}
}

// TestBaselineWorkflow drives the full baseline lifecycle: write it from a
// dirty module, rerun clean against it, then check a fresh finding still
// fails.
func TestBaselineWorkflow(t *testing.T) {
	bl := filepath.Join(t.TempDir(), "brlint.baseline")

	code, _, stderr := runBrlint(t, "-dir", fixture(t, "dirty"), "-baseline", bl, "-write-baseline")
	if code != exitClean {
		t.Fatalf("write-baseline: exit = %d (stderr: %s)", code, stderr)
	}

	code, stdout, stderr := runBrlint(t, "-dir", fixture(t, "dirty"), "-baseline", bl)
	if code != exitClean || stdout != "" {
		t.Fatalf("baselined run should be clean: exit = %d, stdout = %q, stderr = %q", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "clean (2 baselined)") {
		t.Fatalf("stderr should report the baselined count, got %q", stderr)
	}

	// Truncate the baseline to one entry: the other finding is "new" again.
	data, err := os.ReadFile(bl)
	if err != nil {
		t.Fatal(err)
	}
	var keep []string
	for _, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, "time.Now") {
			continue
		}
		keep = append(keep, line)
	}
	if err := os.WriteFile(bl, []byte(strings.Join(keep, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ = runBrlint(t, "-dir", fixture(t, "dirty"), "-baseline", bl)
	if code != exitFindings || !strings.Contains(stdout, "time.Now") {
		t.Fatalf("non-baselined finding must still fail: exit = %d, stdout = %q", code, stdout)
	}
}

// TestJSONGolden pins the -json schema against a committed golden file, so
// CI consumers (the artifact upload, any dashboard parsing it) get schema
// breaks flagged in review. Regenerate with: go test ./cmd/brlint -run
// TestJSONGolden -update
func TestJSONGolden(t *testing.T) {
	code, stdout, _ := runBrlint(t, "-json", "-dir", fixture(t, "dirty"))
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d", code, exitFindings)
	}

	golden := filepath.Join("testdata", "dirty.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(stdout), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if stdout != string(want) {
		t.Fatalf("-json output diverges from %s (rerun with -update if intended):\ngot:\n%s\nwant:\n%s", golden, stdout, want)
	}

	// The report must also be valid JSON with the pinned field names.
	var rep struct {
		Rules    []string `json:"rules"`
		Findings []struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		} `json:"findings"`
		Baselined int `json:"baselined"`
	}
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(rep.Findings) != 2 || rep.Findings[0].File != "internal/core/core.go" || rep.Findings[0].Line == 0 {
		t.Fatalf("unexpected findings: %+v", rep.Findings)
	}
}

// TestJSONCleanShape: a clean module still emits the full schema with an
// empty (not null) findings array.
func TestJSONCleanShape(t *testing.T) {
	code, stdout, _ := runBrlint(t, "-json", "-dir", fixture(t, "clean"))
	if code != exitClean {
		t.Fatalf("exit = %d, want %d", code, exitClean)
	}
	if !strings.Contains(stdout, `"findings": []`) {
		t.Fatalf("clean report should have an empty findings array, got %s", stdout)
	}
}
