// Package clean is a driver-test fixture with no findings.
package clean

// Add is deterministic and allocation-free.
func Add(a, b int) int { return a + b }
