module brlintfixture/clean

go 1.22
