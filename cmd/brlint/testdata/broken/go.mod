module brlintfixture/broken

go 1.22
