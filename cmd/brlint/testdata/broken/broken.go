// Package broken is a driver-test fixture that fails type checking (the
// assignment mismatches), driving the exit-2 load-error path. It is
// well-formed syntactically so gofmt stays quiet.
package broken

func f() int {
	var x string = 42
	return x
}
