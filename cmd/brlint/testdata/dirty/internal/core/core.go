// Package core is a driver-test fixture with exactly two determinism
// findings: a wall-clock read and a map iteration on the sim path.
package core

import "time"

// Stamp reads the wall clock on the simulation path.
func Stamp() int64 { return time.Now().UnixNano() }

// Sum iterates a map on the simulation path.
func Sum(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
