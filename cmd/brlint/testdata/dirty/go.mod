module brlintfixture/dirty

go 1.22
