// Command brexp regenerates the paper's evaluation: every figure and table
// from "Branch Runahead" (MICRO 2021), printed as aligned text tables.
//
// Usage:
//
//	brexp                         # everything, default budgets
//	brexp -figure 10              # just Figure 10
//	brexp -quick                  # reduced workloads/budgets (smoke test)
//	brexp -instrs 2000000         # longer runs
//	brexp -j 8                    # run up to 8 simulations concurrently
//	brexp -cache-dir .brexp-cache # skip points already computed by earlier invocations
//	brexp -cache-dir .brexp-cache -resume   # also resume points interrupted mid-run
//
// Single-point mode runs one (workload, predictor, BR) combination — the
// workload may be a recorded trace, replayed through the full machine:
//
//	brexp -workload mcf_17 -br mini
//	brtrace record -workload leela_17 -o leela.btr
//	brexp -workload trace:leela.btr
//
// Trace mode runs a single simulation with the structured event tracer
// attached and writes a Chrome trace_event JSON file (open in Perfetto or
// chrome://tracing); the trace's per-branch aggregation is cross-checked
// against the run's Figure 12 counters:
//
//	brexp -trace out.json                          # leela_17 under Mini
//	brexp -trace out.json -trace-workload mcf_17 -trace-config big
//	brexp -trace out.json -trace-filter pc=0x4a0   # one branch's events
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	br "repro"
	"repro/internal/stats"
)

func main() {
	var (
		figure      = flag.String("figure", "all", "all | 1 | 2 | 3 | 5 | 10 | 11top | 11bottom | 12 | 13 | 14 | 15 | tables")
		quick       = flag.Bool("quick", false, "reduced workload set and budgets")
		instrs      = flag.Uint64("instrs", 0, "override measured instruction budget per run")
		warmup      = flag.Uint64("warmup", 0, "override warmup instructions")
		verbose     = flag.Bool("v", false, "print per-run progress")
		asJSON      = flag.Bool("json", false, "emit tables as JSON instead of text")
		sweepInstrs = flag.Uint64("sweepinstrs", 0, "override Figure 13 sweep budget per run")
		jobs        = flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS); output is identical for any value")
		cacheDir    = flag.String("cache-dir", "", "persistent run cache directory; completed simulation points are reused across invocations")
		noCache     = flag.Bool("no-cache", false, "recompute every point, ignoring the persistent cache even when -cache-dir is set")
		resume      = flag.Bool("resume", false, "with -cache-dir: persist mid-run snapshots and resume interrupted points on restart")
		shareWarmup = flag.Bool("share-warmup", false, "warm up once per workload and fork each point from the shared snapshot (WarmupBarrier mode; overridden by -resume)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this path on exit")

		workloadRun = flag.String("workload", "", "run one simulation point instead of figures: a kernel name or trace:<file.btr> (see -predictor/-br)")
		predictor   = flag.String("predictor", "tage64", "predictor for -workload mode")
		brConfig    = flag.String("br", "", "Branch Runahead config for -workload mode: core-only|mini|big (empty = predictor alone)")

		traceOut      = flag.String("trace", "", "write a Chrome trace_event JSON of one run to this path and exit")
		traceFilter   = flag.String("trace-filter", "", "only trace events for one branch: pc=0x...")
		traceWorkload = flag.String("trace-workload", "leela_17", "workload for -trace mode")
		traceConfig   = flag.String("trace-config", "mini", "configuration for -trace mode: baseline|coreonly|mini|big")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "brexp: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "brexp: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "brexp: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "brexp: -memprofile: %v\n", err)
			}
		}()
	}

	if *traceOut != "" {
		opts := traceOptions{
			out:      *traceOut,
			filter:   *traceFilter,
			workload: *traceWorkload,
			config:   *traceConfig,
			warmup:   *warmup,
			instrs:   *instrs,
		}
		if err := runTrace(opts); err != nil {
			fmt.Fprintf(os.Stderr, "brexp: trace: %v\n", err)
			os.Exit(1)
		}
		return
	}

	opts := br.DefaultExperimentOptions()
	if *quick {
		opts = br.QuickExperimentOptions()
	}
	if *instrs > 0 {
		opts.Instrs = *instrs
	}
	if *warmup > 0 {
		opts.Warmup = *warmup
	}
	if *sweepInstrs > 0 {
		opts.SweepInstrs = *sweepInstrs
	}
	opts.Jobs = *jobs
	opts.CacheDir = *cacheDir
	opts.NoCache = *noCache
	opts.Resume = *resume
	opts.ShareWarmup = *shareWarmup
	if *resume && *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "brexp: -resume requires -cache-dir")
		os.Exit(2)
	}
	if *verbose {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	s := br.NewExperiments(opts)

	if *workloadRun != "" {
		res, err := s.RunNamed(*workloadRun, *predictor, *brConfig)
		if err != nil {
			fmt.Fprintf(os.Stderr, "brexp: -workload: %v\n", err)
			os.Exit(1)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				fmt.Fprintf(os.Stderr, "brexp: %v\n", err)
				os.Exit(1)
			}
			return
		}
		fmt.Printf("%s under %s: IPC %.4f  MPKI %.4f  (%d instrs, %d cycles, %d mispredicts)\n",
			res.Workload, res.Config, res.IPC, res.MPKI, res.Instrs, res.Cycles, res.Mispred)
		return
	}

	type fig struct {
		name string
		run  func() (*stats.Table, error)
	}
	figs := []fig{
		{"1", s.Figure1},
		{"2", s.Figure2},
		{"3", s.Figure3},
		{"5", s.Figure5},
		{"10", s.Figure10},
		{"11top", s.Figure11Top},
		{"11bottom", s.Figure11Bottom},
		{"12", s.Figure12},
		{"13", func() (*stats.Table, error) { t, _, err := s.Figure13(); return t, err }},
		{"14", s.Figure14},
		{"15", s.Figure15},
	}

	emit := func(t *stats.Table) {
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(t); err != nil {
				fmt.Fprintf(os.Stderr, "brexp: %v\n", err)
				os.Exit(1)
			}
			return
		}
		fmt.Println(t)
	}
	want := map[string]bool{}
	for _, w := range strings.Split(strings.ToLower(*figure), ",") {
		if w = strings.TrimSpace(w); w != "" {
			want[w] = true
		}
	}
	ran := false
	if want["all"] || want["tables"] {
		emit(br.Table1())
		emit(br.Table2())
		emit(br.AreaTable())
		ran = true
	}
	for _, f := range figs {
		if !want["all"] && !want[f.name] {
			continue
		}
		t, err := f.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "brexp: figure %s: %v\n", f.name, err)
			os.Exit(1)
		}
		emit(t)
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "brexp: unknown figure %q\n", *figure)
		os.Exit(1)
	}
}
