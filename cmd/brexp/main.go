// Command brexp regenerates the paper's evaluation: every figure and table
// from "Branch Runahead" (MICRO 2021), printed as aligned text tables.
//
// Usage:
//
//	brexp                         # everything, default budgets
//	brexp -figure 10              # just Figure 10
//	brexp -quick                  # reduced workloads/budgets (smoke test)
//	brexp -instrs 2000000         # longer runs
//	brexp -j 8                    # run up to 8 simulations concurrently
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	br "repro"
	"repro/internal/stats"
)

func main() {
	var (
		figure      = flag.String("figure", "all", "all | 1 | 2 | 3 | 5 | 10 | 11top | 11bottom | 12 | 13 | 14 | tables")
		quick       = flag.Bool("quick", false, "reduced workload set and budgets")
		instrs      = flag.Uint64("instrs", 0, "override measured instruction budget per run")
		warmup      = flag.Uint64("warmup", 0, "override warmup instructions")
		verbose     = flag.Bool("v", false, "print per-run progress")
		asJSON      = flag.Bool("json", false, "emit tables as JSON instead of text")
		sweepInstrs = flag.Uint64("sweepinstrs", 0, "override Figure 13 sweep budget per run")
		jobs        = flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS); output is identical for any value")
	)
	flag.Parse()

	opts := br.DefaultExperimentOptions()
	if *quick {
		opts = br.QuickExperimentOptions()
	}
	if *instrs > 0 {
		opts.Instrs = *instrs
	}
	if *warmup > 0 {
		opts.Warmup = *warmup
	}
	if *sweepInstrs > 0 {
		opts.SweepInstrs = *sweepInstrs
	}
	opts.Jobs = *jobs
	if *verbose {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	s := br.NewExperiments(opts)

	type fig struct {
		name string
		run  func() (*stats.Table, error)
	}
	figs := []fig{
		{"1", s.Figure1},
		{"2", s.Figure2},
		{"3", s.Figure3},
		{"5", s.Figure5},
		{"10", s.Figure10},
		{"11top", s.Figure11Top},
		{"11bottom", s.Figure11Bottom},
		{"12", s.Figure12},
		{"13", func() (*stats.Table, error) { t, _, err := s.Figure13(); return t, err }},
		{"14", s.Figure14},
	}

	emit := func(t *stats.Table) {
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(t); err != nil {
				fmt.Fprintf(os.Stderr, "brexp: %v\n", err)
				os.Exit(1)
			}
			return
		}
		fmt.Println(t)
	}
	want := map[string]bool{}
	for _, w := range strings.Split(strings.ToLower(*figure), ",") {
		if w = strings.TrimSpace(w); w != "" {
			want[w] = true
		}
	}
	ran := false
	if want["all"] || want["tables"] {
		emit(br.Table1())
		emit(br.Table2())
		emit(br.AreaTable())
		ran = true
	}
	for _, f := range figs {
		if !want["all"] && !want[f.name] {
			continue
		}
		t, err := f.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "brexp: figure %s: %v\n", f.name, err)
			os.Exit(1)
		}
		emit(t)
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "brexp: unknown figure %q\n", *figure)
		os.Exit(1)
	}
}
