package main

// The -trace mode: run one simulation with the structured event tracer
// attached, write a Chrome trace_event JSON file (loadable in Perfetto or
// chrome://tracing), and cross-check the trace's per-branch prediction
// aggregation against the run's Figure 12 counters. The two are computed
// by independent code paths from the same emission sites, so an exact
// match validates the trace as a faithful record of the run.

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	br "repro"
	"repro/internal/trace"
)

// traceOptions holds the parsed -trace* flags.
type traceOptions struct {
	out      string // output JSON path
	filter   string // "pc=0x..." or empty
	workload string
	config   string // baseline | coreonly | mini | big
	warmup   uint64
	instrs   uint64
}

// brConfigByName maps the -trace-config flag onto the Table 2 variants.
func brConfigByName(name string) (*br.BRConfig, error) {
	switch strings.ToLower(name) {
	case "baseline":
		return nil, nil
	case "coreonly":
		cfg := br.CoreOnly()
		return &cfg, nil
	case "mini":
		cfg := br.Mini()
		return &cfg, nil
	case "big":
		cfg := br.Big()
		return &cfg, nil
	default:
		return nil, fmt.Errorf("unknown config %q (want baseline|coreonly|mini|big)", name)
	}
}

// parsePCFilter parses "pc=0x4a0" into a PC value.
func parsePCFilter(s string) (uint64, error) {
	rest, ok := strings.CutPrefix(s, "pc=")
	if !ok {
		return 0, fmt.Errorf("bad filter %q (want pc=0x...)", s)
	}
	pc, err := strconv.ParseUint(rest, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad filter PC %q: %v", rest, err)
	}
	return pc, nil
}

// runTrace executes the -trace mode and returns an exit error, if any.
func runTrace(opts traceOptions) error {
	brCfg, err := brConfigByName(opts.config)
	if err != nil {
		return err
	}

	f, err := os.Create(opts.out)
	if err != nil {
		return err
	}
	chrome := trace.NewChrome(f)
	agg := trace.NewBranchAgg()
	tr := trace.New(chrome, agg)
	if opts.filter != "" {
		pc, err := parsePCFilter(opts.filter)
		if err != nil {
			return err
		}
		tr.FilterPC(pc)
	}

	res, runErr := br.Run(opts.workload, br.RunConfig{
		BR:        brCfg,
		Warmup:    opts.warmup,
		MaxInstrs: opts.instrs,
		Trace:     tr,
	})
	if cerr := tr.Close(); cerr != nil && runErr == nil {
		runErr = fmt.Errorf("writing %s: %w", opts.out, cerr)
	}
	if runErr != nil {
		return runErr
	}

	fmt.Printf("trace: %s %s: wrote %s\n", res.Workload, res.Config, opts.out)
	fmt.Printf("trace: %d cycles, %d instrs, IPC %.3f\n", res.Cycles, res.Instrs, res.IPC)

	if brCfg == nil {
		return nil
	}
	if opts.filter != "" {
		// A PC filter drops events for every other branch, so the
		// aggregation covers only the filtered branch; the run-wide
		// Figure 12 cross-check does not apply.
		printPerBranch(agg)
		return nil
	}

	// Cross-check: the trace aggregation must reproduce the run's
	// Figure 12 breakdown exactly.
	got := agg.Totals()
	mismatch := false
	for _, k := range []string{"inactive", "late", "throttled", "correct", "incorrect"} {
		if got[k] != res.Breakdown[k] {
			fmt.Fprintf(os.Stderr, "trace: MISMATCH %s: trace %d, counters %d\n",
				k, got[k], res.Breakdown[k])
			mismatch = true
		}
	}
	if mismatch {
		return fmt.Errorf("trace aggregation diverges from the run's Figure 12 counters")
	}
	fmt.Printf("trace: aggregation matches Figure 12 counters (inactive=%d late=%d throttled=%d correct=%d incorrect=%d)\n",
		got["inactive"], got["late"], got["throttled"], got["correct"], got["incorrect"])
	printPerBranch(agg)
	return nil
}

// printPerBranch renders the per-branch Figure 12 decomposition.
func printPerBranch(agg *trace.BranchAgg) {
	per := agg.PerBranch()
	sort.Slice(per, func(i, j int) bool { return per[i].Totals.Total() > per[j].Totals.Total() })
	if len(per) > 10 {
		per = per[:10]
	}
	if len(per) == 0 {
		return
	}
	fmt.Println("trace: top targeted branches:")
	for _, b := range per {
		t := b.Totals
		fmt.Printf("  pc=0x%x total=%d inactive=%d late=%d throttled=%d correct=%d incorrect=%d\n",
			b.PC, t.Total(), t.Inactive, t.Late, t.Throttled, t.Correct, t.Incorrect)
	}
}
