package branchrunahead

// The benchmark harness: one testing.B benchmark per paper table and
// figure, plus ablation benches for the design decisions DESIGN.md calls
// out. Each benchmark regenerates its figure at a reduced budget and
// reports the headline numbers via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the reproduced series alongside timing.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/btrace"
	"repro/internal/server"
	"repro/internal/workloads"
)

// benchOptions is the reduced budget used by the benchmark harness.
func benchOptions() ExperimentOptions {
	o := QuickExperimentOptions()
	o.Workloads = []string{"mcf_17", "leela_17", "bfs"}
	o.SweepWorkloads = []string{"mcf_17"}
	o.Warmup = 20_000
	o.Instrs = 60_000
	o.SweepInstrs = 40_000
	return o
}

func lastRowF(b *testing.B, t *Table, col int) float64 {
	b.Helper()
	row := t.Rows[len(t.Rows)-1]
	var v float64
	if _, err := sscan(row[col], &v); err != nil {
		b.Fatalf("parse %q: %v", row[col], err)
	}
	return v
}

// BenchmarkFigure1 regenerates the hardest-branch misprediction rates
// (TAGE-SC-L vs MTAGE-SC vs dependence chains).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewExperiments(benchOptions())
		t, err := s.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowF(b, t, 1), "tage64_misp_pct")
		b.ReportMetric(lastRowF(b, t, 2), "mtage_misp_pct")
		b.ReportMetric(lastRowF(b, t, 3), "chains_misp_pct")
	}
}

// BenchmarkFigure2 regenerates the average dependence chain lengths.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewExperiments(benchOptions())
		t, err := s.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowF(b, t, 1), "mean_chain_uops")
	}
}

// BenchmarkFigure3 regenerates the micro-op issue increase due to Branch
// Runahead.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewExperiments(benchOptions())
		t, err := s.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowF(b, t, 1), "uops_increase_pct")
		b.ReportMetric(lastRowF(b, t, 2), "loads_increase_pct")
	}
}

// BenchmarkFigure5 regenerates the affector/guard chain fractions.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewExperiments(benchOptions())
		t, err := s.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowF(b, t, 1), "ag_chains_pct")
	}
}

// BenchmarkFigure10 regenerates the headline MPKI/IPC improvements of
// Core-Only, Mini and Big Branch Runahead plus the 80KB TAGE comparison.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewExperiments(benchOptions())
		t, err := s.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowF(b, t, 1), "mpki_tage80_pct")
		b.ReportMetric(lastRowF(b, t, 3), "mpki_mini_pct")
		b.ReportMetric(lastRowF(b, t, 4), "mpki_big_pct")
		b.ReportMetric(lastRowF(b, t, 7), "ipc_mini_pct")
	}
}

// BenchmarkFigure11Top regenerates MTAGE vs Big Branch Runahead vs the
// combination.
func BenchmarkFigure11Top(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewExperiments(benchOptions())
		t, err := s.Figure11Top()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowF(b, t, 1), "mtage_mpki_pct")
		b.ReportMetric(lastRowF(b, t, 2), "bigbr_mpki_pct")
		b.ReportMetric(lastRowF(b, t, 3), "combined_mpki_pct")
	}
}

// BenchmarkFigure11Bottom regenerates the chain initiation policy
// comparison.
func BenchmarkFigure11Bottom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewExperiments(benchOptions())
		t, err := s.Figure11Bottom()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowF(b, t, 1), "nonspec_mpki_pct")
		b.ReportMetric(lastRowF(b, t, 2), "indep_mpki_pct")
		b.ReportMetric(lastRowF(b, t, 3), "predictive_mpki_pct")
	}
}

// BenchmarkFigure12 regenerates the prediction breakdown.
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewExperiments(benchOptions())
		t, err := s.Figure12()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowF(b, t, 1), "inactive_pct")
		b.ReportMetric(lastRowF(b, t, 2), "late_pct")
		b.ReportMetric(lastRowF(b, t, 5), "correct_pct")
	}
}

// BenchmarkFigure13 regenerates the parameter sweeps (reduced axes at the
// bench budget).
func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewExperiments(benchOptions())
		_, points, err := s.Figure13()
		if err != nil {
			b.Fatal(err)
		}
		// Report the largest single-parameter gain over Mini.
		best := 0.0
		for _, p := range points {
			if p.MPKIImprovement > best {
				best = p.MPKIImprovement
			}
		}
		b.ReportMetric(best, "best_param_gain_pct")
	}
}

// BenchmarkFigure14 regenerates the energy deltas.
func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewExperiments(benchOptions())
		t, err := s.Figure14()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowF(b, t, 2), "mini_energy_delta_pct")
	}
}

// BenchmarkFigure15 regenerates the competing-predictor head-to-head and
// reports every predictor's mean MPKI alone and with Mini Branch
// Runahead — the paper's orthogonality argument as benchmark metrics.
func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewExperiments(benchOptions())
		t, err := s.Figure15()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range t.Rows {
			if !strings.HasPrefix(row[0], "mean/") {
				continue
			}
			name := strings.TrimPrefix(row[0], "mean/")
			var alone, withBR float64
			if _, err := sscan(row[1], &alone); err != nil {
				b.Fatalf("parse %q: %v", row[1], err)
			}
			if _, err := sscan(row[3], &withBR); err != nil {
				b.Fatalf("parse %q: %v", row[3], err)
			}
			b.ReportMetric(alone, name+"_mpki")
			b.ReportMetric(withBR, name+"_br_mpki")
		}
	}
}

// BenchmarkTable1And2 renders the static configuration tables.
func BenchmarkTable1And2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(Table1().String()) == 0 || len(Table2().String()) == 0 ||
			len(AreaTable().String()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §5): each disables one design decision and reports
// the Mini MPKI improvement that remains.

// benchAblation benchmarks one ablated configuration. The unmodified
// baseline run only feeds the improvement metric, so it is setup: it runs
// once before the timer starts, and the measured loop simulates only the
// mutated configuration.
func benchAblation(b *testing.B, mutate func(*BRConfig)) {
	b.Helper()
	scale := workloads.SmallScale()
	base, err := Run("leela_17", RunConfig{Warmup: 20_000, MaxInstrs: 80_000, Scale: &scale})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := Mini()
		mutate(&cfg)
		br, err := Run("leela_17", RunConfig{BR: &cfg, Warmup: 20_000, MaxInstrs: 80_000, Scale: &scale})
		if err != nil {
			b.Fatal(err)
		}
		imp := 0.0
		if base.MPKI != 0 {
			imp = 100 * (base.MPKI - br.MPKI) / base.MPKI
		}
		b.ReportMetric(imp, "mpki_improvement_pct")
	}
}

// BenchmarkAblationInOrderDCE evaluates in-order chain scheduling (the
// paper found it exposes too little MLP).
func BenchmarkAblationInOrderDCE(b *testing.B) {
	benchAblation(b, func(c *BRConfig) { c.InOrderChainExec = true })
}

// BenchmarkAblationNoAffectorGuard disables affector/guard termination;
// chains then alternate between path variants and diverge sooner.
func BenchmarkAblationNoAffectorGuard(b *testing.B) {
	benchAblation(b, func(c *BRConfig) { c.UseAffectorGuard = false })
}

// BenchmarkAblationNoMoveElim disables move and store-load-pair
// elimination, lengthening chains.
func BenchmarkAblationNoMoveElim(b *testing.B) {
	benchAblation(b, func(c *BRConfig) { c.MoveElim = false })
}

// BenchmarkAblationNoThrottle disables the 2-bit throttle counters that
// protect against persistent divergence.
func BenchmarkAblationNoThrottle(b *testing.B) {
	benchAblation(b, func(c *BRConfig) { c.Throttle = false })
}

// BenchmarkAblationMergePoint compares the wrong-path-buffer merge point
// predictor against the prior-work layout heuristic on the same recoveries
// (the paper: 92% vs 78%).
func BenchmarkAblationMergePoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		scale := workloads.SmallScale()
		cfg := Mini()
		res, err := Run("leela_17", RunConfig{BR: &cfg, Warmup: 20_000, MaxInstrs: 80_000, Scale: &scale})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.MergeAcc, "wpb_merge_accuracy_pct")
		b.ReportMetric(100*res.MergeAccLayout, "layout_merge_accuracy_pct")
	}
}

// BenchmarkBaselineSimSpeed measures raw simulator throughput
// (instructions simulated per wall second) on the baseline core.
func BenchmarkBaselineSimSpeed(b *testing.B) {
	scale := workloads.SmallScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run("mcf_17", RunConfig{Warmup: 0, MaxInstrs: 200_000, Scale: &scale})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.IPC, "sim_ipc")
	}
}

// BenchmarkTraceReplaySpeed measures simulator throughput replaying a
// recorded trace of the BenchmarkBaselineSimSpeed run — the same machine,
// fed from the .btr record stream instead of the functional emulator.
// Replay skips correct-path execution at fetch, so this should beat
// BenchmarkBaselineSimSpeed while producing the identical Result.
func BenchmarkTraceReplaySpeed(b *testing.B) {
	scale := workloads.SmallScale()
	w, err := workloads.ByName("mcf_17", scale)
	if err != nil {
		b.Fatal(err)
	}
	// Warmup 0 means the root API's 100k default; the trace must cover it.
	tr, err := btrace.Record(w.Prog, w.Name, btrace.StepsFor(100_000, 200_000))
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "mcf.btr")
	if err := btrace.WriteFile(path, tr); err != nil {
		b.Fatal(err)
	}
	if err := workloads.RegisterTrace("bench-replay", path); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run("trace:bench-replay", RunConfig{Warmup: 0, MaxInstrs: 200_000, Scale: &scale})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.IPC, "sim_ipc")
	}
}

// BenchmarkRunaheadSimSpeed measures throughput with the DCE attached.
func BenchmarkRunaheadSimSpeed(b *testing.B) {
	scale := workloads.SmallScale()
	cfg := Mini()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run("mcf_17", RunConfig{BR: &cfg, Warmup: 0, MaxInstrs: 200_000, Scale: &scale})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.IPC, "sim_ipc")
	}
}

// BenchmarkSimulation is the canonical hot-path benchmark: one Mini
// Branch Runahead simulation with tracing disabled. It reports allocs/op
// so the per-fetch checkpoint free-lists are held to account — the
// steady-state simulation loop must not allocate per conditional-branch
// fetch (remaining allocations are per-uop DynUop construction and
// per-run setup).
func BenchmarkSimulation(b *testing.B) {
	scale := workloads.SmallScale()
	cfg := Mini()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run("leela_17", RunConfig{BR: &cfg, Warmup: 20_000, MaxInstrs: 100_000, Scale: &scale})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.IPC, "sim_ipc")
	}
}

// BenchmarkSuiteParallelSpeedup measures figure-suite throughput — executed
// simulations per wall second regenerating Figure 10 — across worker
// counts. The experiments tests assert the rendered output is byte-identical
// at every -j; this benchmark shows what the parallelism buys. The speedup
// at j>1 naturally tops out at the host's core count.
func BenchmarkSuiteParallelSpeedup(b *testing.B) {
	jobsSet := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		jobsSet = append(jobsSet, n)
	}
	for _, jobs := range jobsSet {
		b.Run(fmt.Sprintf("j%d", jobs), func(b *testing.B) {
			runs := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o := benchOptions()
				o.Jobs = jobs
				s := NewExperiments(o)
				if _, err := s.Figure10(); err != nil {
					b.Fatal(err)
				}
				runs += s.RunsExecuted()
			}
			b.ReportMetric(float64(runs)/b.Elapsed().Seconds(), "runs/sec")
		})
	}
}

// BenchmarkSweepWarmupShared measures what warmup-snapshot forking buys on
// the Figure-13 sweep — the workload it was built for: every sweep point is
// a distinct BR config over the same warmup partition, so with -share-warmup
// semantics each sweep workload warms up once and every point forks the
// blob. The unshared pass is the suite's default end-to-end behavior
// (warmup re-simulated per point), so the runs/sec ratio is the user-visible
// win of turning sharing on.
func BenchmarkSweepWarmupShared(b *testing.B) {
	for _, shared := range []bool{false, true} {
		name := "unshared"
		if shared {
			name = "shared"
		}
		b.Run(name, func(b *testing.B) {
			runs := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o := benchOptions()
				o.Jobs = 4
				o.ShareWarmup = shared
				s := NewExperiments(o)
				if _, _, err := s.Figure13(); err != nil {
					b.Fatal(err)
				}
				runs += s.RunsExecuted()
			}
			b.ReportMetric(float64(runs)/b.Elapsed().Seconds(), "runs/sec")
		})
	}
}

// BenchmarkSuiteWarmCacheSpeedup measures what the persistent run cache
// buys: regenerating Figure 10 against a warm -cache-dir executes zero
// simulations, so a warm pass is pure result decode plus table assembly.
// One cold pass populates the cache outside the timer; the timed loop is
// all warm passes, and warm_speedup reports cold-seconds over
// warm-seconds-per-pass.
func BenchmarkSuiteWarmCacheSpeedup(b *testing.B) {
	o := benchOptions()
	o.CacheDir = b.TempDir()

	coldStart := time.Now()
	s := NewExperiments(o)
	if _, err := s.Figure10(); err != nil {
		b.Fatal(err)
	}
	cold := time.Since(coldStart)
	if s.RunsExecuted() == 0 {
		b.Fatal("cold pass executed no simulations")
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := NewExperiments(o)
		if _, err := w.Figure10(); err != nil {
			b.Fatal(err)
		}
		if n := w.RunsExecuted(); n != 0 {
			b.Fatalf("warm pass executed %d simulations, want 0", n)
		}
	}
	warm := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(cold.Seconds()/warm.Seconds(), "warm_speedup")
}

// BenchmarkServeWarmRequest measures the brserve fast path: a run request
// over HTTP against a warm cache directory. Each timed iteration stands up
// a fresh server over the same -cache-dir (so the in-memory job registry
// cannot answer — the persistent cache must), submits the request, polls
// to completion and downloads the result. The cold pass outside the timer
// populates the cache; warm iterations must execute zero simulations.
func BenchmarkServeWarmRequest(b *testing.B) {
	cfg := server.Config{CacheDir: b.TempDir(), Quick: true, MaxJobs: 1}
	const reqBody = `{"version":1,"kind":"run","workload":"mcf_17","br":"mini"}`

	serve := func() (runsExecuted int) {
		b.Helper()
		srv, err := server.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(reqBody))
		if err != nil {
			b.Fatal(err)
		}
		var st server.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		for st.State != "done" {
			if st.State == "failed" || st.State == "cancelled" {
				b.Fatalf("job %s: %s", st.State, st.Error)
			}
			time.Sleep(time.Millisecond)
			sr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
			if err != nil {
				b.Fatal(err)
			}
			if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
				b.Fatal(err)
			}
			sr.Body.Close()
		}
		rr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadAll(rr.Body); err != nil {
			b.Fatal(err)
		}
		rr.Body.Close()
		if rr.StatusCode != http.StatusOK {
			b.Fatalf("result status %d", rr.StatusCode)
		}
		return st.RunsExecuted
	}

	coldStart := time.Now()
	if n := serve(); n == 0 {
		b.Fatal("cold request executed no simulations")
	}
	cold := time.Since(coldStart)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := serve(); n != 0 {
			b.Fatalf("warm request executed %d simulations, want 0", n)
		}
	}
	warm := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(cold.Seconds()/warm.Seconds(), "warm_speedup")
}

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
