GO ?= go

.PHONY: check fmt vet lint lint-human build test race bench-json fuzz-smoke

## check: the full pre-PR gate. Everything below must pass before merging.
check: fmt vet lint-human build test race
	@echo "check: OK"

fmt:
	@out="$$(gofmt -l cmd internal examples *.go)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

## lint: simulator-aware static analysis (call-graph reachability rules,
## config/stat invariants; see DESIGN.md §7 and §11) against the committed
## baseline, emitting the machine-readable report CI uploads as an
## artifact. Exit 1 means a non-baselined finding.
BRLINT_REPORT ?= brlint-report.json
lint:
	@$(GO) run ./cmd/brlint -json -baseline brlint.baseline > $(BRLINT_REPORT); \
	status=$$?; \
	cat $(BRLINT_REPORT); \
	exit $$status

## lint-human: the same gate with human-readable file:line output, for the
## local pre-PR `make check` path.
lint-human:
	$(GO) run ./cmd/brlint -baseline brlint.baseline ./...

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

## race: the packages with cross-structure pointer protocols, the
## parallel experiment runner and the job-queue server get an extra
## race-detector pass.
race:
	$(GO) test -race ./internal/sim ./internal/runahead ./internal/experiments/... ./internal/server

## bench-json: record the simulator-throughput (execution-driven and
## trace-replay), parallel-suite, warm-cache, shared-warmup-sweep,
## Figure 15 predictor-head-to-head and warm-HTTP-request benchmarks as
## committed JSON for cross-PR comparison. Override BENCH_OUT to compare
## against a prior snapshot.
BENCH_OUT ?= BENCH_7.json
bench-json:
	$(GO) test -bench 'BenchmarkBaselineSimSpeed|BenchmarkTraceReplaySpeed|BenchmarkRunaheadSimSpeed|BenchmarkSuiteParallelSpeedup|BenchmarkSweepWarmupShared|BenchmarkSuiteWarmCacheSpeedup|BenchmarkServeWarmRequest|BenchmarkFigure15$$' -run '^$$' -benchtime 3x . \
		| $(GO) run ./cmd/benchjson -o $(BENCH_OUT)
	@cat $(BENCH_OUT)

## fuzz-smoke: a bounded pass over each native fuzz target — the brstate
## codec reader, the branch-trace decoder, the persistent-cache result
## decoder and the warmup snapshot restore. CI runs this on every push;
## for a real fuzzing session raise FUZZTIME or run the targets
## individually.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzReader$$' -fuzztime $(FUZZTIME) ./internal/brstate
	$(GO) test -run '^$$' -fuzz 'FuzzTraceReader$$' -fuzztime $(FUZZTIME) ./internal/btrace
	$(GO) test -run '^$$' -fuzz 'FuzzLoadResult$$' -fuzztime $(FUZZTIME) ./internal/experiments
	$(GO) test -run '^$$' -fuzz 'FuzzWarmupBlob$$' -fuzztime $(FUZZTIME) ./internal/sim
