GO ?= go

.PHONY: check fmt vet lint lint-human build test race bench-json

## check: the full pre-PR gate. Everything below must pass before merging.
check: fmt vet lint-human build test race
	@echo "check: OK"

fmt:
	@out="$$(gofmt -l cmd internal examples *.go)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

## lint: simulator-aware static analysis (call-graph reachability rules,
## config/stat invariants; see DESIGN.md §7 and §11) against the committed
## baseline, emitting the machine-readable report CI uploads as an
## artifact. Exit 1 means a non-baselined finding.
BRLINT_REPORT ?= brlint-report.json
lint:
	@$(GO) run ./cmd/brlint -json -baseline brlint.baseline > $(BRLINT_REPORT); \
	status=$$?; \
	cat $(BRLINT_REPORT); \
	exit $$status

## lint-human: the same gate with human-readable file:line output, for the
## local pre-PR `make check` path.
lint-human:
	$(GO) run ./cmd/brlint -baseline brlint.baseline ./...

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

## race: the packages with cross-structure pointer protocols and the
## parallel experiment runner get an extra race-detector pass.
race:
	$(GO) test -race ./internal/sim ./internal/runahead ./internal/experiments/...

## bench-json: record the simulator-throughput, parallel-suite,
## warm-cache, shared-warmup-sweep and Figure 15 predictor-head-to-head
## benchmarks as committed JSON for cross-PR comparison. Override
## BENCH_OUT to compare against a prior snapshot.
BENCH_OUT ?= BENCH_5.json
bench-json:
	$(GO) test -bench 'BenchmarkBaselineSimSpeed|BenchmarkRunaheadSimSpeed|BenchmarkSuiteParallelSpeedup|BenchmarkSweepWarmupShared|BenchmarkSuiteWarmCacheSpeedup|BenchmarkFigure15$$' -run '^$$' -benchtime 3x . \
		| $(GO) run ./cmd/benchjson -o $(BENCH_OUT)
	@cat $(BENCH_OUT)
