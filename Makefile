GO ?= go

.PHONY: check fmt vet lint build test race

## check: the full pre-PR gate. Everything below must pass before merging.
check: fmt vet lint build test race
	@echo "check: OK"

fmt:
	@out="$$(gofmt -l cmd internal examples *.go)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

## lint: simulator-aware static analysis (determinism, config/stat
## invariants). See DESIGN.md §7.
lint:
	$(GO) run ./cmd/brlint ./...

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

## race: the packages with cross-structure pointer protocols get an extra
## race-detector pass.
race:
	$(GO) test -race ./internal/sim ./internal/runahead
