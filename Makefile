GO ?= go

.PHONY: check fmt vet lint build test race bench-json

## check: the full pre-PR gate. Everything below must pass before merging.
check: fmt vet lint build test race
	@echo "check: OK"

fmt:
	@out="$$(gofmt -l cmd internal examples *.go)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

## lint: simulator-aware static analysis (determinism, config/stat
## invariants). See DESIGN.md §7.
lint:
	$(GO) run ./cmd/brlint ./...

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

## race: the packages with cross-structure pointer protocols and the
## parallel experiment runner get an extra race-detector pass.
race:
	$(GO) test -race ./internal/sim ./internal/runahead ./internal/experiments/...

## bench-json: record the simulator-throughput, parallel-suite and
## warm-cache benchmarks as committed JSON for cross-PR comparison.
## Override BENCH_OUT to compare against a prior snapshot.
BENCH_OUT ?= BENCH_3.json
bench-json:
	$(GO) test -bench 'BenchmarkBaselineSimSpeed|BenchmarkRunaheadSimSpeed|BenchmarkSuiteParallelSpeedup|BenchmarkSuiteWarmCacheSpeedup' -run '^$$' -benchtime 3x . \
		| $(GO) run ./cmd/benchjson -o $(BENCH_OUT)
	@cat $(BENCH_OUT)
